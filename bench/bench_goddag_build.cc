// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiments E1/E2/E10 (DESIGN.md): KyGODDAG construction cost vs. edition
// size and number of hierarchies, plus the cost of virtual-hierarchy
// add/remove cycles (what every analyze-string() call pays).

#include <benchmark/benchmark.h>

#include "goddag/kygoddag.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xml/parser.h"

namespace {

using mhx::goddag::KyGoddag;

void BM_BuildPaperDocument(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = mhx::workload::BuildPaperDocument();
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_BuildPaperDocument);

void BM_BuildEdition_BySize(benchmark::State& state) {
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = state.range(0);
  mhx::workload::Edition edition = mhx::workload::GenerateEdition(config);
  size_t bytes = edition.base_text.size();
  for (auto _ : state) {
    auto doc = mhx::workload::BuildEditionDocument(config);
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes *
                          4);  // 4 encodings parsed per build
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildEdition_BySize)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Complexity();

void BM_BuildEdition_ByHierarchyCount(benchmark::State& state) {
  // 1..4 hierarchies over the same base text.
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = 800;
  mhx::workload::Edition e = mhx::workload::GenerateEdition(config);
  std::vector<std::pair<std::string, std::string>> all = {
      {"physical", e.physical_xml},
      {"structural", e.structural_xml},
      {"restoration", e.restoration_xml},
      {"condition", e.condition_xml},
  };
  int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mhx::MultihierarchicalDocument::Builder builder;
    builder.SetBaseText(e.base_text);
    for (int i = 0; i < count; ++i) {
      builder.AddHierarchy(all[i].first, all[i].second);
    }
    auto doc = builder.Build();
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_BuildEdition_ByHierarchyCount)->DenseRange(1, 4);

void BM_VirtualHierarchyCycle(benchmark::State& state) {
  // Add + remove a virtual hierarchy (the analyze-string() substrate) on an
  // edition of the given size. arg1 toggles incremental leaf maintenance
  // (the E10 ablation: patched splice vs. full partition rebuild).
  mhx::workload::EditionConfig config;
  config.seed = 5;
  config.word_count = state.range(0);
  auto doc = mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) std::abort();
  KyGoddag* kg = doc->mutable_goddag();
  kg->set_incremental_leaves(state.range(1) != 0);
  size_t n = kg->base_text().size();
  for (auto _ : state) {
    auto h = kg->AddVirtualHierarchy(
        "rest",
        {mhx::goddag::VirtualElement{"res", mhx::TextRange(n / 4, n / 2), {}},
         mhx::goddag::VirtualElement{"m", mhx::TextRange(n / 3, n / 2 - 1),
                                     {}}});
    if (!h.ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());  // force rebuild
    if (!kg->RemoveVirtualHierarchy(*h).ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VirtualHierarchyCycle)
    ->ArgsProduct({{100, 400, 1600, 6400}, {0, 1}})
    ->Complexity();

void BM_XmlParseOnly(benchmark::State& state) {
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = state.range(0);
  mhx::workload::Edition e = mhx::workload::GenerateEdition(config);
  for (auto _ : state) {
    auto doc = mhx::xml::Parse(e.structural_xml);
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          e.structural_xml.size());
}
BENCHMARK(BM_XmlParseOnly)->Arg(400)->Arg(6400);

void BM_LeafPartitionRebuild(benchmark::State& state) {
  // Isolated cost of a full lazy leaf rebuild after a structural change
  // (incremental maintenance disabled; with it on, the change is a splice —
  // see BM_VirtualHierarchyCycle's ablation). Each iteration performs one
  // add + rebuild + remove + rebuild cycle, all timed.
  mhx::workload::EditionConfig config;
  config.seed = 5;
  config.word_count = state.range(0);
  auto doc = mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) std::abort();
  KyGoddag* kg = doc->mutable_goddag();
  kg->set_incremental_leaves(false);
  size_t n = kg->base_text().size();
  for (auto _ : state) {
    auto h = kg->AddVirtualHierarchy(
        "rest",
        {mhx::goddag::VirtualElement{"res", mhx::TextRange(1, n - 1), {}}});
    if (!h.ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());
    (void)kg->RemoveVirtualHierarchy(*h);
    benchmark::DoNotOptimize(kg->leaves().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeafPartitionRebuild)->Arg(400)->Arg(1600)->Arg(6400)->Complexity();

}  // namespace

BENCHMARK_MAIN();
