// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiments E1/E2/E10 (DESIGN.md): KyGODDAG construction cost vs. edition
// size and number of hierarchies, plus the cost of virtual-hierarchy
// add/remove cycles (what every analyze-string() call pays).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "document.h"
#include "goddag/kygoddag.h"
#include "goddag/overlay.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xml/parser.h"

namespace {

using mhx::goddag::KyGoddag;

void BM_BuildPaperDocument(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = mhx::workload::BuildPaperDocument();
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_BuildPaperDocument);

void BM_BuildEdition_BySize(benchmark::State& state) {
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = state.range(0);
  mhx::workload::Edition edition = mhx::workload::GenerateEdition(config);
  size_t bytes = edition.base_text.size();
  for (auto _ : state) {
    auto doc = mhx::workload::BuildEditionDocument(config);
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes *
                          4);  // 4 encodings parsed per build
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildEdition_BySize)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Complexity();

void BM_BuildEdition_ByHierarchyCount(benchmark::State& state) {
  // 1..4 hierarchies over the same base text.
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = 800;
  mhx::workload::Edition e = mhx::workload::GenerateEdition(config);
  std::vector<std::pair<std::string, std::string>> all = {
      {"physical", e.physical_xml},
      {"structural", e.structural_xml},
      {"restoration", e.restoration_xml},
      {"condition", e.condition_xml},
  };
  int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mhx::MultihierarchicalDocument::Builder builder;
    builder.SetBaseText(e.base_text);
    for (int i = 0; i < count; ++i) {
      builder.AddHierarchy(all[i].first, all[i].second);
    }
    auto doc = builder.Build();
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_BuildEdition_ByHierarchyCount)->DenseRange(1, 4);

void BM_VirtualHierarchyCycle(benchmark::State& state) {
  // Add + remove a virtual hierarchy (the analyze-string() substrate) on an
  // edition of the given size. arg1 toggles incremental leaf maintenance
  // (the E10 ablation: patched splice vs. full partition rebuild).
  mhx::workload::EditionConfig config;
  config.seed = 5;
  config.word_count = state.range(0);
  auto doc = mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) std::abort();
  KyGoddag* kg = doc->mutable_goddag();
  kg->set_incremental_leaves(state.range(1) != 0);
  size_t n = kg->base_text().size();
  for (auto _ : state) {
    auto h = kg->AddVirtualHierarchy(
        "rest",
        {mhx::goddag::VirtualElement{"res", mhx::TextRange(n / 4, n / 2), {}},
         mhx::goddag::VirtualElement{"m", mhx::TextRange(n / 3, n / 2 - 1),
                                     {}}});
    if (!h.ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());  // force rebuild
    if (!kg->RemoveVirtualHierarchy(*h).ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VirtualHierarchyCycle)
    ->ArgsProduct({{100, 400, 1600, 6400}, {0, 1}})
    ->Complexity();

void BM_XmlParseOnly(benchmark::State& state) {
  mhx::workload::EditionConfig config;
  config.seed = 3;
  config.word_count = state.range(0);
  mhx::workload::Edition e = mhx::workload::GenerateEdition(config);
  for (auto _ : state) {
    auto doc = mhx::xml::Parse(e.structural_xml);
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          e.structural_xml.size());
}
BENCHMARK(BM_XmlParseOnly)->Arg(400)->Arg(6400);

void BM_LeafPartitionRebuild(benchmark::State& state) {
  // Isolated cost of a full lazy leaf rebuild after a structural change
  // (incremental maintenance disabled; with it on, the change is a splice —
  // see BM_VirtualHierarchyCycle's ablation). Each iteration performs one
  // add + rebuild + remove + rebuild cycle, all timed.
  mhx::workload::EditionConfig config;
  config.seed = 5;
  config.word_count = state.range(0);
  auto doc = mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) std::abort();
  KyGoddag* kg = doc->mutable_goddag();
  kg->set_incremental_leaves(false);
  size_t n = kg->base_text().size();
  for (auto _ : state) {
    auto h = kg->AddVirtualHierarchy(
        "rest",
        {mhx::goddag::VirtualElement{"res", mhx::TextRange(1, n - 1), {}}});
    if (!h.ok()) std::abort();
    benchmark::DoNotOptimize(kg->leaves().size());
    (void)kg->RemoveVirtualHierarchy(*h);
    benchmark::DoNotOptimize(kg->leaves().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeafPartitionRebuild)->Arg(400)->Arg(1600)->Arg(6400)->Complexity();

// --- E10 follow-up: OverlayView boundary splice, batched vs per-boundary --

// A fixed 6400-word edition plus one overlay carrying `boundaries` fresh
// cuts (arg 0): what an analyze-string() call with many matches queues on
// the evaluation's view before its first leaf() step.
struct SpliceFixture {
  std::unique_ptr<mhx::MultihierarchicalDocument> doc;
  std::shared_ptr<mhx::goddag::OverlayIdAllocator> ids;
  std::shared_ptr<const mhx::goddag::GoddagOverlay> overlay;
};

SpliceFixture* MakeSpliceFixture(size_t boundaries) {
  static auto* cache = new std::map<size_t, SpliceFixture*>();
  auto it = cache->find(boundaries);
  if (it != cache->end()) return it->second;
  auto* fx = new SpliceFixture();
  mhx::workload::EditionConfig config;
  config.seed = 7;
  config.word_count = 6400;
  auto doc = mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) std::abort();
  fx->doc = std::make_unique<mhx::MultihierarchicalDocument>(
      std::move(doc).value());
  fx->doc->goddag().leaves();  // materialise, as the engine does
  fx->ids = std::make_shared<mhx::goddag::OverlayIdAllocator>();
  // boundaries/2 disjoint elements, each contributing two interior cuts at
  // odd offsets (word cells are multi-character, so odd positions split).
  const size_t n = fx->doc->base_text().size();
  std::vector<mhx::goddag::VirtualElement> elements;
  const size_t count = boundaries / 2;
  const size_t stride = (n - 8) / (count + 1);
  if (stride < 4) std::abort();
  for (size_t i = 0; i < count; ++i) {
    const size_t begin = (1 + (i + 1) * stride) | 1;
    elements.push_back(
        mhx::goddag::VirtualElement{"m", mhx::TextRange(begin, begin + 2),
                                    {}});
  }
  auto overlay = mhx::goddag::GoddagOverlay::Create(
      &fx->doc->goddag(), fx->ids, "m", std::move(elements));
  if (!overlay.ok()) std::abort();
  fx->overlay = *overlay;
  (*cache)[boundaries] = fx;
  return fx;
}

// The shipped path: OverlayView::leaves() drains all queued boundaries in
// one batched sorted merge pass — O(partition + N).
void BM_OverlaySplice_Batched(benchmark::State& state) {
  SpliceFixture* fx = MakeSpliceFixture(state.range(0));
  size_t cells = 0;
  for (auto _ : state) {
    mhx::goddag::OverlayView view(&fx->doc->goddag());
    view.AddOverlay(fx->overlay);
    cells = view.leaves().size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["merged_cells"] = static_cast<double>(cells);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OverlaySplice_Batched)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

// The pre-batching algorithm, reproduced here as the ablation baseline:
// one binary search + vector insert per boundary, O(partition) each —
// O(partition * N) per drain. The batched path must beat this from ~64
// boundaries up.
void BM_OverlaySplice_PerBoundaryInsert(benchmark::State& state) {
  SpliceFixture* fx = MakeSpliceFixture(state.range(0));
  const auto& base_leaves = fx->doc->goddag().leaves();
  const size_t n = fx->doc->base_text().size();
  size_t cells = 0;
  for (auto _ : state) {
    std::vector<mhx::goddag::Leaf> merged = base_leaves;
    const auto& overlay = *fx->overlay;
    for (mhx::goddag::NodeId id = overlay.root(); id < overlay.id_end();
         ++id) {
      const mhx::TextRange& range = overlay.node(id).range;
      for (size_t pos : {range.begin, range.end}) {
        if (pos == 0 || pos >= n) continue;
        auto it = std::upper_bound(
            merged.begin(), merged.end(), pos,
            [](size_t p, const mhx::goddag::Leaf& leaf) {
              return p < leaf.range.end;
            });
        if (it == merged.end() || it->range.begin >= pos) continue;
        const size_t leaf_end = it->range.end;
        it->range.end = pos;
        merged.insert(it + 1, mhx::goddag::Leaf{mhx::TextRange(pos, leaf_end)});
      }
    }
    cells = merged.size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["merged_cells"] = static_cast<double>(cells);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OverlaySplice_PerBoundaryInsert)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
