// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The corpus-service acceptance lane: closed-loop mixed query traffic over
// many generated editions through one CorpusService — the ROADMAP's
// production shape. Client threads issue the four Section 4 query shapes
// in realistic ratios (I.1 40%, I.2 25%, II.1 25%, III.1 10%) against 10
// deterministic editions; every sampled result is verified byte-identical
// to a serial reference computed on an independently built copy of the
// same edition, so the timings are of *correct* executions — shared plan
// cache, shared pool, LRU eviction and admission control included.
//
// Queries are the edition-generic forms of the paper's Section 4 queries
// (the verbatim I.1/II.1 texts pin words of the Figure 1 text that a
// generated edition does not contain; the shapes — overlap-aware line
// selection, leaf-walk highlighting, analyze-string() re-partitioning,
// restoration italics — are identical, matching the scaled scenarios of
// bench_paper_queries.cc).
//
// Counters per lane: latency percentiles p50/p95/p99 (µs, from the
// lock-free base::LatencyHistogram), qps (rate), plan_hit_rate (process-
// wide PlanCache, cross-document), builds and evictions (LRU churn; the
// capacity-6 lane forces steady-state eviction, capacity-10 is
// churn-free after warm-up).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/histogram.h"
#include "corpus/corpus.h"
#include "workload/generator.h"

namespace {

using mhx::corpus::CorpusOptions;
using mhx::corpus::CorpusService;

constexpr size_t kEditions = 10;
constexpr size_t kClients = 4;
constexpr size_t kOpsPerIteration = 64;  // per benchmark iteration, total

// The four Section 4 query shapes, edition-generic.
const char* const kQueries[] = {
    // I.1: lines containing a matching word, overlap-aware.
    R"(
for $l in /descendant::line[xdescendant::w[matches(string(.), ".*ea.*")] or
                            overlapping::w[matches(string(.), ".*ea.*")]]
return <line>{string($l)}</line>)",
    // I.2: every line with damaged words highlighted, walking shared
    // leaves.
    R"(
for $l in /descendant::line
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))",
    // II.1: analyze-string() over matching words, match spans emphasised
    // per leaf (the analyze-string-heavy class, admission-controlled).
    R"(
for $w in /descendant::w[matches(string(.), ".*ea.*")]
return (
  let $r := analyze-string($w, ".*ea.*")
  return
    for $leaf in $r/descendant::leaf()
    return if ($leaf/xancestor::m) then <b>{$leaf}</b> else $leaf
  , <br/> ))",
    // III.1: restored text in italics.
    R"(
for $leaf in /descendant::leaf()
return if ($leaf/xancestor::res) then <i>{$leaf}</i> else $leaf)",
};

// Cumulative percentage thresholds for the I.1/I.2/II.1/III.1 mix.
constexpr int kMixThresholds[] = {40, 65, 90, 100};

mhx::workload::EditionConfig EditionConfigFor(size_t i) {
  mhx::workload::EditionConfig config;
  config.seed = 101 + i;
  config.word_count = 140;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

std::string EditionName(size_t i) {
  return "edition-" + std::to_string(i);
}

void VerifyOrAbort(bool ok, const char* what) {
  if (!ok) {
    fprintf(stderr, "verification failed: %s\n", what);
    std::abort();
  }
}

// splitmix64: deterministic per-op choice of edition and query, identical
// across lanes and runs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Op {
  size_t edition;
  size_t query;
};

Op OpFor(uint64_t index) {
  const uint64_t h = Mix(index);
  const int roll = static_cast<int>(h % 100);
  size_t query = 0;
  while (roll >= kMixThresholds[query]) ++query;
  return Op{static_cast<size_t>((h >> 32) % kEditions), query};
}

// The serial single-document reference: every (edition, query) result,
// computed once per process on documents built independently of any
// CorpusService (no shared cache, no shared pool, serial evaluation).
const std::string& Expected(size_t edition, size_t query) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, std::string>();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(edition, query);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto doc = mhx::workload::BuildEditionDocument(EditionConfigFor(edition));
    VerifyOrAbort(doc.ok(), "reference edition build");
    auto out = doc->Query(kQueries[query]);
    VerifyOrAbort(out.ok(), "reference query");
    it = cache->emplace(key, std::move(out).value()).first;
  }
  return it->second;
}

// One closed-loop lane: kClients threads drive the mixed workload through
// a fresh CorpusService. Args: {capacity, query_threads}.
void BM_CorpusMixed(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  const unsigned query_threads = static_cast<unsigned>(state.range(1));

  CorpusOptions options;
  options.capacity = capacity;
  options.pool_threads = query_threads > 1 ? 4 : 0;
  // Sized so the bench itself never sees backpressure (rejections are
  // pinned behaviour in corpus_test); admission still serialises the heavy
  // class down to 2 concurrent analyze-string queries.
  options.max_heavy_in_flight = 2;
  options.heavy_queue_limit = kClients * 4;
#if defined(__unix__) || defined(__APPLE__)
  // The churning lane (capacity < editions) runs with spill on: rebuilds
  // after eviction come back as mapped arena loads instead of XML
  // reparses. The predicate — not a new Args row — keeps the lane names
  // (/10/1, /6/1, /10/2) stable for tools/bench_compare.py history.
  if (capacity < kEditions) {
    char dir_template[] = "/tmp/mhx_bench_corpus.XXXXXX";
    char* dir = mkdtemp(dir_template);
    VerifyOrAbort(dir != nullptr, "mkdtemp for the spill lane");
    options.spill_dir = dir;
  }
#endif
  CorpusService corpus(options);
  for (size_t i = 0; i < kEditions; ++i) {
    VerifyOrAbort(corpus.Register(EditionName(i), EditionConfigFor(i)).ok(),
                  "register edition");
  }

  mhx::QueryOptions query_options;
  query_options.threads = query_threads;

  // Pre-warm the serial reference for every (edition, query) pair so the
  // timed loop's verification is a map lookup, not a document build.
  for (size_t e = 0; e < kEditions; ++e) {
    for (size_t q = 0; q < 4; ++q) Expected(e, q);
  }

  // One histogram per client thread (cache-line-private recording), merged
  // into the lane histogram after the run — the aggregation path
  // base::LatencyHistogram::Merge exists for.
  std::vector<std::unique_ptr<mhx::base::LatencyHistogram>> client_latency;
  for (size_t c = 0; c < kClients; ++c) {
    client_latency.push_back(std::make_unique<mhx::base::LatencyHistogram>());
  }
  uint64_t next_op = 0;
  for (auto _ : state) {
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      const uint64_t begin = next_op + c * (kOpsPerIteration / kClients);
      const uint64_t end = begin + kOpsPerIteration / kClients;
      clients.emplace_back([&, begin, end, c] {
        for (uint64_t i = begin; i < end; ++i) {
          const Op op = OpFor(i);
          const auto start = std::chrono::steady_clock::now();
          auto out = corpus.Query(EditionName(op.edition),
                                  kQueries[op.query], query_options);
          const auto stop = std::chrono::steady_clock::now();
          client_latency[c]->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(stop -
                                                                    start)
                  .count()));
          if (!out.ok() || *out != Expected(op.edition, op.query)) {
            ++failures;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    next_op += kOpsPerIteration;
    VerifyOrAbort(failures.load() == 0,
                  "corpus result == serial single-document reference");
  }
  mhx::base::LatencyHistogram latency;
  for (const auto& h : client_latency) latency.Merge(*h);
  VerifyOrAbort(latency.TotalCount() == latency.count(),
                "merged histogram is internally consistent");

  const CorpusService::Stats stats = corpus.stats();
  VerifyOrAbort(stats.heavy_rejections == 0,
                "no admission rejections at bench sizing");
  state.counters["p50_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.50));
  state.counters["p95_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.95));
  state.counters["p99_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.99));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(latency.count()), benchmark::Counter::kIsRate);
  const double lookups =
      static_cast<double>(stats.plan_hits + stats.plan_misses);
  state.counters["plan_hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.plan_hits) / lookups : 0.0;
  state.counters["builds"] = static_cast<double>(stats.builds);
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  // LRU-churn cold-start split: of `builds`, how many reparsed the XML vs
  // came back as mapped arena loads (non-zero only in the spill lane).
  VerifyOrAbort(stats.load_fallbacks == 0, "no arena-load fallbacks");
  state.counters["parse_builds"] =
      static_cast<double>(stats.builds - stats.mmap_loads);
  state.counters["mmap_loads"] = static_cast<double>(stats.mmap_loads);
  // analyze-string patterns compile once process-wide; the hit counters
  // were previously invisible outside the PlanCache itself.
  state.counters["plan_regex_hits"] =
      static_cast<double>(stats.plan_regex_hits);
  state.counters["plan_regex_misses"] =
      static_cast<double>(stats.plan_regex_misses);
  // Full registry snapshot in the lane's JSON label: tools/bench_compare.py
  // flattens the numeric leaves into informational "obs.*" counters.
  state.SetLabel(corpus.metrics().JsonExport());
}
BENCHMARK(BM_CorpusMixed)
    ->Args({10, 1})  // all editions resident: plan-cache + pool sharing
    ->Args({6, 1})   // capacity < editions: steady-state LRU churn
    ->Args({10, 2})  // intra-query fan-out through the shared pool
    ->UseRealTime();

// --- BM_MutateWhileQuerying --------------------------------------------------
//
// The MVCC acceptance lane: the same closed-loop reader traffic as
// BM_CorpusMixed, but with a writer thread continuously committing and
// removing a virtual hierarchy on every edition through the corpus write
// path while the readers run. Readers never block on the writer (that is
// the MVCC contract; reader latency should sit near the churn-free
// BM_CorpusMixed lane), and every sampled result is verified to be
// byte-identical to one of the two quiesced per-version references —
// the edition without the churn hierarchy or with it, never a mix.
// Extra counters: writes (committed versions across the run, rate) and
// writer_p95_us (commit latency; the copy-on-write clone plus the prebuilt
// RangeIndex is the writer-side cost readers no longer pay).

constexpr size_t kChurnEditions = 4;
const char kChurnHierarchy[] = "bench-churn";

std::vector<mhx::goddag::VirtualElement> ChurnElements() {
  return {mhx::goddag::VirtualElement{"churn", mhx::TextRange(5, 25), {}},
          mhx::goddag::VirtualElement{"churn", mhx::TextRange(40, 77), {}}};
}

// The with-churn-hierarchy reference, built and committed independently of
// any CorpusService (same pattern as Expected()).
const std::string& ExpectedWithChurn(size_t edition, size_t query) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, std::string>();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(edition, query);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto doc = mhx::workload::BuildEditionDocument(EditionConfigFor(edition));
    VerifyOrAbort(doc.ok(), "churn reference edition build");
    auto writer = doc->NewWriter();
    writer.AddVirtualHierarchy(kChurnHierarchy, ChurnElements());
    VerifyOrAbort(writer.Commit().ok(), "churn reference commit");
    auto out = doc->Query(kQueries[query]);
    VerifyOrAbort(out.ok(), "churn reference query");
    it = cache->emplace(key, std::move(out).value()).first;
  }
  return it->second;
}

void BM_MutateWhileQuerying(benchmark::State& state) {
  CorpusOptions options;
  options.capacity = kChurnEditions;  // resident: committed versions live
  options.pool_threads = 0;
  options.max_heavy_in_flight = 2;
  options.heavy_queue_limit = kClients * 4;
  options.max_writers_in_flight = 1;
  options.writer_queue_limit = 4;
  CorpusService corpus(options);
  for (size_t i = 0; i < kChurnEditions; ++i) {
    VerifyOrAbort(corpus.Register(EditionName(i), EditionConfigFor(i)).ok(),
                  "register edition");
  }
  for (size_t e = 0; e < kChurnEditions; ++e) {
    for (size_t q = 0; q < 4; ++q) {
      Expected(e, q);
      ExpectedWithChurn(e, q);
    }
  }

  std::vector<std::unique_ptr<mhx::base::LatencyHistogram>> client_latency;
  for (size_t c = 0; c < kClients; ++c) {
    client_latency.push_back(std::make_unique<mhx::base::LatencyHistogram>());
  }
  mhx::base::LatencyHistogram writer_latency;
  uint64_t next_op = 0;
  for (auto _ : state) {
    std::atomic<int> failures{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      const uint64_t begin = next_op + c * (kOpsPerIteration / kClients);
      const uint64_t end = begin + kOpsPerIteration / kClients;
      clients.emplace_back([&, begin, end, c] {
        for (uint64_t i = begin; i < end; ++i) {
          const Op base_op = OpFor(i);
          const Op op{base_op.edition % kChurnEditions, base_op.query};
          const auto start = std::chrono::steady_clock::now();
          auto out = corpus.Query(EditionName(op.edition), kQueries[op.query]);
          const auto end_time = std::chrono::steady_clock::now();
          client_latency[c]->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  end_time - start)
                  .count()));
          // Membership, not equality: the query pinned either the version
          // without the churn hierarchy or the one with it. Anything else
          // is a torn read.
          if (!out.ok() || (*out != Expected(op.edition, op.query) &&
                            *out != ExpectedWithChurn(op.edition, op.query))) {
            ++failures;
          }
        }
      });
    }
    // The writer: round-robin commit/remove across editions until the
    // readers drain. Commits serialise per document; readers never wait.
    std::thread writer([&] {
      std::vector<bool> present(kChurnEditions, false);
      size_t e = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = std::chrono::steady_clock::now();
        auto version =
            present[e]
                ? corpus.RemoveVirtualHierarchy(EditionName(e),
                                                kChurnHierarchy)
                : corpus.CommitVirtualHierarchy(EditionName(e),
                                                kChurnHierarchy,
                                                ChurnElements());
        const auto end_time = std::chrono::steady_clock::now();
        writer_latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(end_time -
                                                                  start)
                .count()));
        if (!version.ok()) {
          ++failures;
        } else {
          present[e] = !present[e];
        }
        e = (e + 1) % kChurnEditions;
      }
    });
    for (std::thread& client : clients) client.join();
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    next_op += kOpsPerIteration;
    VerifyOrAbort(failures.load() == 0,
                  "every racing result matches one quiesced version");
  }
  mhx::base::LatencyHistogram latency;
  for (const auto& h : client_latency) latency.Merge(*h);

  const CorpusService::Stats stats = corpus.stats();
  VerifyOrAbort(stats.write_rejections == 0,
                "no write backpressure at bench sizing");
  VerifyOrAbort(stats.overlay_id_exhausted == 0,
                "overlay-id space never exhausts");
  VerifyOrAbort(stats.writes > 0, "the writer actually committed");
  state.counters["p50_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.50));
  state.counters["p95_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.95));
  state.counters["p99_us"] =
      static_cast<double>(latency.ValueAtQuantile(0.99));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(latency.count()), benchmark::Counter::kIsRate);
  state.counters["writes"] = benchmark::Counter(
      static_cast<double>(stats.writes), benchmark::Counter::kIsRate);
  state.counters["writer_p95_us"] =
      static_cast<double>(writer_latency.ValueAtQuantile(0.95));
  state.counters["live_snapshots"] =
      static_cast<double>(stats.live_snapshots);
  state.SetLabel(corpus.metrics().JsonExport());
}
BENCHMARK(BM_MutateWhileQuerying)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
